package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Errors surfaced by chunk stores.
var (
	// ErrQuit is returned by ChunkAt after a user-initiated abort: the
	// pipeline still closes its ring (QUIT then REPORT), per §III-C.
	ErrQuit = errors.New("kascade: transfer aborted by user")
	// ErrAbandoned is returned after an unrecoverable data loss (FORGET
	// from a streamed source): the node gives up entirely, per §III-D2.
	ErrAbandoned = errors.New("kascade: transfer abandoned, data irrecoverably lost")
	// ErrExcluded is returned after the predecessor excluded this node
	// for sustained low throughput (the paper's §V extension). The node
	// steps aside without cascading a QUIT: its former successor is
	// adopted by the excluding predecessor.
	ErrExcluded = errors.New("kascade: node excluded for low throughput")
)

// ForgetError is returned by ChunkAt when the requested offset fell out of
// the retained window; Base is the smallest offset still available. The
// sender side answers the pending GET/PGET with FORGET(Base).
type ForgetError struct{ Base uint64 }

func (e *ForgetError) Error() string {
	return fmt.Sprintf("kascade: data before offset %d is no longer buffered", e.Base)
}

// store is the node-local view of the stream being broadcast: the
// downstream sender reads sequential chunks from it, and the fetch server
// (at node 1) answers PGET range requests from it.
type store interface {
	// ChunkAt returns the chunk starting at byte offset off, blocking
	// until it is available. It returns io.EOF once off reaches the end
	// of a finished stream, a *ForgetError if off is below the retained
	// window, ErrQuit/ErrAbandoned after an abort, or the abort cause.
	ChunkAt(off uint64) ([]byte, error)
	// SetLowWater tells the store that bytes below off are safely at the
	// successor, making the chunks below off eligible for eviction.
	SetLowWater(off uint64)
	// ResetLowWater rebases the consumption mark when a *new* successor
	// takes over at an older offset, protecting its unread chunks from
	// eviction.
	ResetLowWater(off uint64)
	// ReleaseAll lifts back-pressure entirely (the node became the
	// pipeline tail and has no successor to replay for).
	ReleaseAll()
	// Head returns the exclusive upper bound of available data.
	Head() uint64
	// End returns the total stream length, if known yet.
	End() (uint64, bool)
	// Abort poisons the store: blocked and future calls return cause.
	Abort(cause error)
	// AbortCause returns the abort cause, or nil.
	AbortCause() error
}

// windowStore is the relay-side (and streamed-source-side) store: a ring of
// the most recent chunks. Appending blocks once the window is full and the
// successor has not consumed the oldest chunk yet — this is the engine's
// back-pressure, equivalent to TCP's when the paper's Ruby implementation
// stops reading. Keeping a window (rather than only the newest chunk) is
// what lets a node replay data to a recovering successor (§III-D2).
type windowStore struct {
	mu   sync.Mutex
	cond *sync.Cond

	chunkSize int
	capBytes  uint64

	base     uint64 // offset of chunks[0]
	head     uint64 // next append offset (== total bytes received)
	chunks   [][]byte
	lowWater uint64 // bytes below this are consumed downstream
	released bool   // no successor: never block appends

	ended bool
	end   uint64
	abort error
}

func newWindowStore(chunkSize, windowChunks int) *windowStore {
	s := &windowStore{
		chunkSize: chunkSize,
		capBytes:  uint64(chunkSize) * uint64(windowChunks),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Append adds the next chunk (all chunks are ChunkSize long except the
// final one). It blocks while the window is full of unconsumed data.
func (s *windowStore) Append(chunk []byte) error {
	if len(chunk) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	need := uint64(len(chunk))
	for {
		if s.abort != nil {
			return s.abort
		}
		if s.ended {
			return fmt.Errorf("kascade: append after end of stream")
		}
		if s.released || s.head-s.base+need <= s.capBytes {
			break
		}
		// Make room by evicting front chunks already consumed by the
		// successor. Unconsumed chunks are never dropped: the appender
		// waits instead, which is the pipeline's back-pressure.
		for len(s.chunks) > 0 && s.head-s.base+need > s.capBytes {
			first := uint64(len(s.chunks[0]))
			if s.base+first > s.lowWater {
				break
			}
			s.chunks = s.chunks[1:]
			s.base += first
		}
		if s.head-s.base+need <= s.capBytes {
			break
		}
		s.cond.Wait()
	}
	owned := make([]byte, len(chunk))
	copy(owned, chunk)
	s.chunks = append(s.chunks, owned)
	s.head += uint64(len(owned))
	s.cond.Broadcast()
	return nil
}

// Finish marks the end of the stream at offset total.
func (s *windowStore) Finish(total uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.end = total
	}
	s.cond.Broadcast()
}

func (s *windowStore) ChunkAt(off uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.abort != nil {
			return nil, s.abort
		}
		if off < s.base {
			return nil, &ForgetError{Base: s.base}
		}
		if off < s.head {
			return s.chunkAtLocked(off)
		}
		if s.ended {
			return nil, io.EOF
		}
		s.cond.Wait()
	}
}

// chunkAtLocked locates the chunk containing off. Offsets are always
// chunk-aligned by construction (GET/PGET offsets advance by whole chunks).
func (s *windowStore) chunkAtLocked(off uint64) ([]byte, error) {
	idx := int((off - s.base) / uint64(s.chunkSize))
	if idx < 0 || idx >= len(s.chunks) {
		return nil, fmt.Errorf("kascade: internal: offset %d maps to chunk %d of %d", off, idx, len(s.chunks))
	}
	chunkStart := s.base + uint64(idx)*uint64(s.chunkSize)
	if chunkStart != off {
		return nil, fmt.Errorf("kascade: unaligned offset %d (chunk starts at %d)", off, chunkStart)
	}
	return s.chunks[idx], nil
}

func (s *windowStore) SetLowWater(off uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off > s.lowWater {
		s.lowWater = off
		s.cond.Broadcast()
	}
}

func (s *windowStore) ResetLowWater(off uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lowWater = off
	s.cond.Broadcast()
}

func (s *windowStore) ReleaseAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.released = true
	s.cond.Broadcast()
}

func (s *windowStore) Head() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head
}

func (s *windowStore) End() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end, s.ended
}

func (s *windowStore) Abort(cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abort == nil {
		s.abort = cause
	}
	s.cond.Broadcast()
}

func (s *windowStore) AbortCause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abort
}

// Base returns the smallest retained offset (for tests and diagnostics).
func (s *windowStore) Base() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// fileStore is the random-access source store used when the input is a
// file (io.ReaderAt): any offset can be served at any time, so recovering
// successors never hit FORGET at node 1 — exactly the distinction §III-D2
// draws between file-backed and streamed sources.
type fileStore struct {
	ra        io.ReaderAt
	size      uint64
	chunkSize int

	mu    sync.Mutex
	abort error
	buf   sync.Pool
}

func newFileStore(ra io.ReaderAt, size int64, chunkSize int) *fileStore {
	fs := &fileStore{ra: ra, size: uint64(size), chunkSize: chunkSize}
	fs.buf.New = func() any { b := make([]byte, chunkSize); return &b }
	return fs
}

func (s *fileStore) ChunkAt(off uint64) ([]byte, error) {
	if err := s.AbortCause(); err != nil {
		return nil, err
	}
	if off >= s.size {
		return nil, io.EOF
	}
	n := uint64(s.chunkSize)
	if off+n > s.size {
		n = s.size - off
	}
	bp := s.buf.Get().(*[]byte)
	buf := (*bp)[:n]
	if _, err := s.ra.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("kascade: reading source file at %d: %w", off, err)
	}
	// The buffer is intentionally not returned to the pool: callers hold
	// the slice across a network write. Chunks are small and short-lived;
	// the pool only smooths allocation bursts between GC cycles.
	return buf, nil
}

func (s *fileStore) SetLowWater(uint64)   {}
func (s *fileStore) ResetLowWater(uint64) {}
func (s *fileStore) ReleaseAll()          {}
func (s *fileStore) Head() uint64         { return s.size }
func (s *fileStore) End() (uint64, bool) {
	return s.size, true
}

func (s *fileStore) Abort(cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abort == nil {
		s.abort = cause
	}
}

func (s *fileStore) AbortCause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abort
}
