package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Errors surfaced by chunk stores.
var (
	// ErrQuit is returned by ChunkAt after a user-initiated abort: the
	// pipeline still closes its ring (QUIT then REPORT), per §III-C.
	ErrQuit = errors.New("kascade: transfer aborted by user")
	// ErrAbandoned is returned after an unrecoverable data loss (FORGET
	// from a streamed source): the node gives up entirely, per §III-D2.
	ErrAbandoned = errors.New("kascade: transfer abandoned, data irrecoverably lost")
	// ErrExcluded is returned after the predecessor excluded this node
	// for sustained low throughput (the paper's §V extension). The node
	// steps aside without cascading a QUIT: its former successor is
	// adopted by the excluding predecessor.
	ErrExcluded = errors.New("kascade: node excluded for low throughput")
)

// ForgetError is returned by ChunkAt when the requested offset fell out of
// the retained window; Base is the smallest offset still available. The
// sender side answers the pending GET/PGET with FORGET(Base).
type ForgetError struct{ Base uint64 }

func (e *ForgetError) Error() string {
	return fmt.Sprintf("kascade: data before offset %d is no longer buffered", e.Base)
}

// errNotReady is PollChunkAt's "nothing buffered at this offset yet, and no
// terminal condition either" answer — the scheduler arms the store notify
// and parks the session instead of blocking a goroutine in ChunkAt.
var errNotReady = errors.New("kascade: chunk not buffered yet")

// errRecycled poisons a store whose session ended and returned its buffers
// to the cross-session arena; stragglers (an in-flight PGET server) see it
// instead of reading recycled memory.
var errRecycled = errors.New("kascade: session over, store recycled")

// store is the node-local view of the stream being broadcast: the
// downstream sender reads sequential chunks from it, and the fetch server
// (at node 1) answers PGET range requests from it.
//
// Chunks move through a store by reference, never by copy: ChunkAt and
// TryChunkAt return ref-counted views the caller must release once the
// payload has been written out, and windowStore.Append takes ownership of
// the caller's reference.
type store interface {
	// ChunkAt returns a retained reference to the chunk starting at byte
	// offset off, blocking until it is available. The caller must release
	// it. It returns io.EOF once off reaches the end of a finished stream,
	// a *ForgetError if off is below the retained window,
	// ErrQuit/ErrAbandoned after an abort, or the abort cause.
	ChunkAt(off uint64) (*chunk, error)
	// TryChunkAt is the non-blocking variant used to coalesce vectored
	// writes: it returns a retained reference if the chunk is immediately
	// available and (nil, false) otherwise — including every condition
	// (EOF, FORGET, abort) that ChunkAt reports as an error, which the
	// caller discovers on its next blocking ChunkAt.
	TryChunkAt(off uint64) (*chunk, bool)
	// PollChunkAt is the scheduler-facing variant: never blocking, it
	// returns errNotReady while the chunk is simply not buffered yet and
	// otherwise exactly what ChunkAt would (the chunk, io.EOF, a
	// *ForgetError, or the abort cause) — so an engine worker can claim a
	// forwardable batch, or learn the terminal condition, without parking
	// a goroutine per session.
	PollChunkAt(off uint64) (*chunk, error)
	// SetNotify installs the store's readiness hook: an edge-triggered
	// callback fired (at most once per ArmNotify) when the armed offset
	// becomes readable or a terminal condition arrives. Nil clears it.
	SetNotify(fn func())
	// ArmNotify arms a one-shot notification for off: fire once `want`
	// bytes from off are buffered (the store clamps want to what its
	// capacity can ever hold, so the threshold is always crossable), or
	// immediately on any terminal condition. It reports whether the
	// notify was armed: false means ChunkAt(off) would already return
	// without blocking, so the caller should poll again instead of
	// waiting.
	ArmNotify(off uint64, want int) bool
	// SetLowWater tells the store that bytes below off are safely at the
	// successor, making the chunks below off eligible for eviction.
	SetLowWater(off uint64)
	// ResetLowWater rebases the consumption mark when a *new* successor
	// takes over at an older offset, protecting its unread chunks from
	// eviction.
	ResetLowWater(off uint64)
	// ReleaseAll lifts back-pressure entirely (the node became the
	// pipeline tail and has no successor to replay for).
	ReleaseAll()
	// Head returns the exclusive upper bound of available data.
	Head() uint64
	// End returns the total stream length, if known yet.
	End() (uint64, bool)
	// Abort poisons the store: blocked and future calls return cause.
	Abort(cause error)
	// AbortCause returns the abort cause, or nil.
	AbortCause() error
}

// windowStore is the relay-side (and streamed-source-side) store: a
// fixed-capacity ring of the most recent chunks. Appending blocks once the
// ring is full and the successor has not consumed the oldest chunk yet —
// this is the engine's back-pressure, equivalent to TCP's when the paper's
// Ruby implementation stops reading. Keeping a window (rather than only the
// newest chunk) is what lets a node replay data to a recovering successor
// (§III-D2).
//
// Ownership: Append takes the caller's reference without copying the
// payload; eviction is O(1) (release the oldest slot, advance the ring
// start). ChunkAt hands out an extra reference, so a slow replay to a
// recovering successor keeps its payload alive even if the slot is evicted
// and the window moves on underneath it.
type windowStore struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters int // goroutines parked in cond.Wait (skip wakeups when zero)

	chunkSize int
	pool      *chunkPool

	ring  []*chunk // fixed-capacity slot array
	start int      // index of the oldest occupied slot
	count int      // occupied slots

	base     uint64 // offset of the oldest retained chunk
	head     uint64 // next append offset (== total bytes received)
	lowWater uint64 // bytes below this are consumed downstream
	released bool   // no successor: evict freely, never block appends

	ended bool
	end   uint64
	abort error

	// The edge-triggered readiness hook of the scheduled forwarding path:
	// armed at one offset, fired at most once when that offset becomes
	// readable (or a terminal condition arrives), then disarmed. This is
	// what batches wakeups — the engine scheduler is notified once per
	// drain cycle instead of the downstream goroutine waking per chunk.
	notify   func()
	notifyAt uint64
	armed    bool
}

func newWindowStore(chunkSize, windowChunks int, pool *chunkPool) *windowStore {
	if pool == nil {
		pool = newChunkPool(chunkSize, windowChunks+poolSlack)
	}
	s := &windowStore{
		chunkSize: chunkSize,
		pool:      pool,
		ring:      make([]*chunk, windowChunks),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// slot returns the ring position of logical chunk index i (0 = oldest).
func (s *windowStore) slot(i int) int { return (s.start + i) % len(s.ring) }

// waitLocked parks the caller on the store condition, tracking the waiter
// count so state changes with nobody parked skip the wakeup entirely.
func (s *windowStore) waitLocked() {
	s.waiters++
	s.cond.Wait()
	s.waiters--
}

// wakeLocked wakes parked waiters, if any. Caller holds s.mu.
func (s *windowStore) wakeLocked() {
	if s.waiters > 0 {
		s.cond.Broadcast()
	}
}

// readyLocked reports whether a notify armed at off should fire: data
// buffered through off, or a terminal condition (abort, FORGET, EOF).
// Caller holds s.mu.
func (s *windowStore) readyLocked(off uint64) bool {
	return s.abort != nil || off < s.base || off < s.head || s.ended
}

// maybeNotifyLocked fires the armed readiness hook if its offset became
// readable (or terminal). The hook runs while holding s.mu — it must only
// flip scheduler state (the lock order is store.mu → scheduler.mu, never
// the reverse). Caller holds s.mu.
func (s *windowStore) maybeNotifyLocked() {
	if s.armed && s.readyLocked(s.notifyAt) {
		s.armed = false
		if s.notify != nil {
			s.notify()
		}
	}
}

// evictLocked drops the oldest chunk. Caller holds s.mu.
func (s *windowStore) evictLocked() {
	c := s.ring[s.start]
	s.ring[s.start] = nil
	s.base += uint64(len(c.bytes()))
	s.start = (s.start + 1) % len(s.ring)
	s.count--
	c.release()
}

// Append adds the next chunk (all chunks are ChunkSize long except the
// final one), taking ownership of the caller's reference — the payload is
// not copied. It blocks while the ring is full of unconsumed data; on a
// released store (pipeline tail) the oldest chunk is dropped instead, so
// the tail's memory stays bounded by the window.
func (s *windowStore) Append(c *chunk) error {
	if len(c.bytes()) == 0 {
		c.release()
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.abort != nil {
			c.release()
			return s.abort
		}
		if s.ended {
			c.release()
			return fmt.Errorf("kascade: append after end of stream")
		}
		if s.count < len(s.ring) {
			break
		}
		// Make room by evicting front chunks already consumed by the
		// successor. Unconsumed chunks are never dropped — the appender
		// waits instead, which is the pipeline's back-pressure — except
		// on a released store, which has nobody left to replay for.
		for s.count == len(s.ring) {
			oldest := s.ring[s.start]
			if !s.released && s.base+uint64(len(oldest.bytes())) > s.lowWater {
				break
			}
			s.evictLocked()
		}
		if s.count < len(s.ring) {
			break
		}
		s.waitLocked()
	}
	s.ring[s.slot(s.count)] = c
	s.count++
	s.head += uint64(len(c.bytes()))
	s.wakeLocked()
	s.maybeNotifyLocked()
	return nil
}

// AppendVirtual advances the head past size bytes that were relayed through
// the kernel (spliced) and are therefore NOT retained: base moves with head,
// so the window over this span is empty and a successor asking for any of it
// gets FORGET — which its recovery resolves against node 0's file store.
// The armed readiness notify is deliberately NOT fired: the spliced span is
// consumed by construction (the splice wrote it to the successor), so there
// is no chunk for a scheduler worker to claim, and waking one would only
// produce a phantom FORGET turn.
func (s *windowStore) AppendVirtual(size uint64) error {
	if size == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abort != nil {
		return s.abort
	}
	if s.ended {
		return fmt.Errorf("kascade: append after end of stream")
	}
	// Splice only engages with the successor fully caught up, so every
	// retained chunk is already consumed: release them before rebasing.
	for s.count > 0 {
		s.evictLocked()
	}
	s.head += size
	s.base = s.head
	if s.lowWater < s.head {
		s.lowWater = s.head
	}
	s.wakeLocked()
	return nil
}

// AppendBytes copies b into a pooled chunk and appends it. Convenience for
// callers (and tests) that do not manage chunk references themselves.
func (s *windowStore) AppendBytes(b []byte) error {
	c := s.pool.get(len(b))
	copy(c.bytes(), b)
	return s.Append(c)
}

// Finish marks the end of the stream at offset total.
func (s *windowStore) Finish(total uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.end = total
	}
	s.wakeLocked()
	s.maybeNotifyLocked()
}

func (s *windowStore) ChunkAt(off uint64) (*chunk, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.abort != nil {
			return nil, s.abort
		}
		if off < s.base {
			return nil, &ForgetError{Base: s.base}
		}
		if off < s.head {
			return s.chunkAtLocked(off)
		}
		if s.ended {
			return nil, io.EOF
		}
		s.waitLocked()
	}
}

func (s *windowStore) PollChunkAt(off uint64) (*chunk, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.abort != nil:
		return nil, s.abort
	case off < s.base:
		return nil, &ForgetError{Base: s.base}
	case off < s.head:
		return s.chunkAtLocked(off)
	case s.ended:
		return nil, io.EOF
	default:
		return nil, errNotReady
	}
}

func (s *windowStore) SetNotify(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notify = fn
	if fn == nil {
		s.armed = false
	}
}

func (s *windowStore) ArmNotify(off uint64, want int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Clamp the batching threshold to half the window: back-pressure
	// parks the producer only once the ring is full, so a threshold at or
	// below half of it is always crossable and the notify can never
	// deadlock against a producer waiting for this consumer.
	if max := len(s.ring) / 2 * s.chunkSize; want > max {
		want = max
	}
	if want < 1 {
		want = 1
	}
	at := off + uint64(want) - 1
	if s.abort != nil || s.ended || off < s.base || s.head > at {
		// Terminal condition, or the threshold is already crossed:
		// claim now. (Data short of the threshold arms anyway — Append
		// fires the hook once the backlog builds, and EOF/abort fire it
		// immediately, so delivery is only deferred while the producer
		// is actively streaming.)
		return false
	}
	s.notifyAt = at
	s.armed = true
	return true
}

func (s *windowStore) TryChunkAt(off uint64) (*chunk, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abort != nil || off < s.base || off >= s.head {
		return nil, false
	}
	c, err := s.chunkAtLocked(off)
	if err != nil {
		return nil, false
	}
	return c, true
}

// chunkAtLocked locates the chunk containing off and returns a retained
// reference. Offsets are always chunk-aligned by construction (GET/PGET
// offsets advance by whole chunks).
func (s *windowStore) chunkAtLocked(off uint64) (*chunk, error) {
	idx := int((off - s.base) / uint64(s.chunkSize))
	if idx < 0 || idx >= s.count {
		return nil, fmt.Errorf("kascade: internal: offset %d maps to chunk %d of %d", off, idx, s.count)
	}
	chunkStart := s.base + uint64(idx)*uint64(s.chunkSize)
	if chunkStart != off {
		return nil, fmt.Errorf("kascade: unaligned offset %d (chunk starts at %d)", off, chunkStart)
	}
	return s.ring[s.slot(idx)].retain(), nil
}

func (s *windowStore) SetLowWater(off uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off > s.lowWater {
		s.lowWater = off
		s.wakeLocked()
	}
}

func (s *windowStore) ResetLowWater(off uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lowWater = off
	s.wakeLocked()
}

func (s *windowStore) ReleaseAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.released = true
	s.wakeLocked()
}

func (s *windowStore) Head() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head
}

func (s *windowStore) End() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end, s.ended
}

func (s *windowStore) Abort(cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abort == nil {
		s.abort = cause
	}
	s.wakeLocked()
	s.maybeNotifyLocked()
}

func (s *windowStore) AbortCause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abort
}

// recycle ends the store's life: it is poisoned (unless already terminal)
// so late readers get a clean error, and every ring slot's reference is
// released — parking the buffers in the pool, whose drain hands them to
// the cross-session arena.
func (s *windowStore) recycle() {
	s.mu.Lock()
	if s.abort == nil {
		s.abort = errRecycled
	}
	for s.count > 0 {
		s.evictLocked()
	}
	s.wakeLocked()
	s.mu.Unlock()
}

// rebase positions an empty window at off (chunk-aligned): a late
// joiner's live stream starts at its catch-up boundary, not at zero.
// Must run before the first Append.
func (s *windowStore) rebase(off uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.base = off
	s.head = off
	if s.lowWater < off {
		s.lowWater = off
	}
}

// Base returns the smallest retained offset (for tests and diagnostics).
func (s *windowStore) Base() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// fileStore is the random-access source store used when the input is a
// file (io.ReaderAt): any offset can be served at any time, so recovering
// successors never hit FORGET at node 1 — exactly the distinction §III-D2
// draws between file-backed and streamed sources. Served chunks come from
// the shared pool; the caller's release after the network write returns
// the buffer for reuse.
type fileStore struct {
	ra        io.ReaderAt
	size      uint64
	chunkSize int
	pool      *chunkPool

	mu    sync.Mutex
	abort error
}

func newFileStore(ra io.ReaderAt, size int64, chunkSize int, pool *chunkPool) *fileStore {
	if pool == nil {
		pool = newChunkPool(chunkSize, poolSlack)
	}
	return &fileStore{ra: ra, size: uint64(size), chunkSize: chunkSize, pool: pool}
}

func (s *fileStore) ChunkAt(off uint64) (*chunk, error) {
	if err := s.AbortCause(); err != nil {
		return nil, err
	}
	if off >= s.size {
		return nil, io.EOF
	}
	n := uint64(s.chunkSize)
	if off+n > s.size {
		n = s.size - off
	}
	c := s.pool.get(int(n))
	// A reader may legally return io.EOF alongside a full tail read.
	if nr, err := s.ra.ReadAt(c.bytes(), int64(off)); err != nil && !(err == io.EOF && nr == int(n)) {
		c.release()
		return nil, fmt.Errorf("kascade: reading source file at %d: %w", off, err)
	}
	return c, nil
}

func (s *fileStore) TryChunkAt(off uint64) (*chunk, bool) {
	c, err := s.ChunkAt(off)
	if err != nil {
		return nil, false
	}
	return c, true
}

// PollChunkAt never answers errNotReady: a random-access source can serve
// any offset (or its terminal condition) immediately.
func (s *fileStore) PollChunkAt(off uint64) (*chunk, error) { return s.ChunkAt(off) }

// SetNotify is a no-op: a file store is always ready, nothing to wait for.
func (s *fileStore) SetNotify(func()) {}

// ArmNotify always reports "ready now": the caller should poll, not wait.
func (s *fileStore) ArmNotify(uint64, int) bool { return false }

func (s *fileStore) SetLowWater(uint64)   {}
func (s *fileStore) ResetLowWater(uint64) {}
func (s *fileStore) ReleaseAll()          {}
func (s *fileStore) Head() uint64         { return s.size }
func (s *fileStore) End() (uint64, bool) {
	return s.size, true
}

func (s *fileStore) Abort(cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abort == nil {
		s.abort = cause
	}
}

func (s *fileStore) AbortCause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abort
}
