package core

import (
	"context"
	"testing"
	"time"

	"kascade/internal/transport"
)

func TestFakeClockTimers(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	early := clk.NewTimer(time.Second)
	late := clk.NewTimer(time.Hour)
	if got := clk.Now(); !got.Equal(time.Unix(1000, 0)) {
		t.Fatalf("Now = %v", got)
	}
	clk.Advance(2 * time.Second)
	select {
	case <-early.C():
	default:
		t.Fatal("1s timer did not fire after a 2s advance")
	}
	select {
	case <-late.C():
		t.Fatal("1h timer fired after a 2s advance")
	default:
	}
	if !late.Stop() {
		t.Fatal("Stop on a pending timer should report true")
	}
	clk.Advance(2 * time.Hour)
	select {
	case <-late.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if early.Stop() {
		t.Fatal("Stop on a fired timer should report false")
	}
}

// TestInjectedClockDrivesUpstreamIdleTimeout: the upstream-idle timer — an
// hour of wall-clock patience in production — gives up instantly when the
// injected clock advances past it, proving the engine's waits run on
// Options.Clock instead of hardcoded time.Now()/time.After.
func TestInjectedClockDrivesUpstreamIdleTimeout(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	env := newTestEnv(2, 0)
	opts := testOpts()
	opts.Clock = clk
	opts.UpstreamIdleTimeout = time.Hour
	plan := Plan{Peers: env.peers, Opts: opts}

	net2 := env.fabric.Host("n2")
	l, err := net2.Listen(env.peers[1].Addr)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(NodeConfig{Index: 1, Plan: plan, Network: net2, Listener: l})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	errC := make(chan error, 1)
	go func() {
		_, aerr := n.awaitUpstream(context.Background())
		errC <- aerr
	}()
	// No predecessor ever dials: only the fake hour may unblock the wait.
	// Wait for the goroutine to park on its timer before advancing.
	waitCond(t, 5*time.Second, func() bool {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return len(clk.waiters) > 0
	})
	clk.Advance(2 * time.Hour)
	select {
	case aerr := <-errC:
		if aerr == nil {
			t.Fatal("awaitUpstream returned without a predecessor or timeout")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("awaitUpstream ignored the injected clock")
	}
	if real := time.Since(start); real > 2*time.Second {
		t.Fatalf("fake one-hour wait took %v of real time", real)
	}
}

// The defaulted clock must be the system clock, and a full broadcast must
// run unchanged with an explicitly injected system clock.
func TestSystemClockDefaultAndExplicit(t *testing.T) {
	if (Options{}).withDefaults().Clock == nil {
		t.Fatal("withDefaults left Clock nil")
	}
	env := newTestEnv(3, 0)
	data := testPayload(16<<10, 31)
	cfg := env.config(data, false)
	opts := testOpts()
	opts.Clock = SystemClock()
	cfg.Opts = opts
	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("failures: %v", res.Report)
	}
	checkSink(t, env, 1, data)
	checkSink(t, env, 2, data)
}

// Compile-time: both clocks satisfy the interface, and the transport's
// fault hooks coexist with the engine types this package exports.
var (
	_ Clock             = SystemClock()
	_ Clock             = (*FakeClock)(nil)
	_ transport.Network = (*transport.TCP)(nil)
)
