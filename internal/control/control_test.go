package control

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kascade/internal/core"
	"kascade/internal/transport"
)

// TestFrameRoundTrip pins the wire layout: header fields survive, payloads
// decode, and the magic byte can never collide with a v1 JSON opener.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameStart, 42, StartRequest{Session: 7, Index: 3}); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] == '{' {
		t.Fatal("frame magic collides with JSON: v1 detection impossible")
	}
	if buf.Bytes()[0] != Magic {
		t.Fatalf("first byte 0x%02x, want magic 0x%02x", buf.Bytes()[0], Magic)
	}
	f, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameStart || f.Req != 42 {
		t.Fatalf("header %v/%d, want START/42", f.Type, f.Req)
	}
	var req StartRequest
	if err := f.decode(&req); err != nil {
		t.Fatal(err)
	}
	if req.Session != 7 || req.Index != 3 {
		t.Fatalf("payload %+v", req)
	}

	// A legacy v1 JSON message must be rejected by its first byte.
	if _, err := readFrame(strings.NewReader(`{"op":"prepare"}`)); err == nil {
		t.Fatal("v1 JSON accepted as a frame")
	}
}

// harness wires a Server and a Client over an in-memory duplex pipe, with
// a real engine behind the server.
type harness struct {
	engine   *core.Engine
	server   *Server
	client   *Client
	runs     sync.Map // SessionID -> *runRecord
	serveErr chan error
}

type runRecord struct {
	started  chan struct{}
	release  chan struct{} // closed by the test to let Run finish
	ctxErr   atomic.Value  // error the run context ended with, if any
	finished chan struct{}
}

func newHarness(t *testing.T, engineOpts core.EngineOptions, srvMut func(*Server), cliOpts ClientOptions) *harness {
	t.Helper()
	fabric := transport.NewFabric(64 << 10)
	engine, err := core.NewEngine(fabric.Host("agent"), "agent:7000", engineOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })

	h := &harness{engine: engine, serveErr: make(chan error, 1)}
	h.server = &Server{
		Engine:   engine,
		DataAddr: func(net.Conn) string { return "agent:7000" },
		Run: func(ctx context.Context, req StartRequest) ResultReply {
			rec := &runRecord{started: make(chan struct{}), release: make(chan struct{}), finished: make(chan struct{})}
			if prev, loaded := h.runs.LoadOrStore(req.Session, rec); loaded {
				rec = prev.(*runRecord)
			}
			close(rec.started)
			defer close(rec.finished)
			select {
			case <-ctx.Done():
				rec.ctxErr.Store(ctx.Err())
				return ResultReply{Err: "killed: " + ctx.Err().Error()}
			case <-rec.release:
				return ResultReply{Bytes: 1234}
			}
		},
	}
	if srvMut != nil {
		srvMut(h.server)
	}

	cliConn, srvConn := net.Pipe()
	go func() { h.serveErr <- h.server.ServeConn(srvConn, bufio.NewReader(srvConn)) }()
	h.client = NewClient(cliConn, cliOpts)
	t.Cleanup(func() { h.client.Close(); srvConn.Close() })
	return h
}

// record returns (creating if needed) the run record for sid, so tests can
// pre-arm the release channel before Start.
func (h *harness) record(sid core.SessionID) *runRecord {
	rec := &runRecord{started: make(chan struct{}), release: make(chan struct{}), finished: make(chan struct{})}
	if prev, loaded := h.runs.LoadOrStore(sid, rec); loaded {
		return prev.(*runRecord)
	}
	return rec
}

// TestPrepareStartResult drives a full session lifecycle over the framed
// channel.
func TestPrepareStartResult(t *testing.T) {
	h := newHarness(t, core.EngineOptions{}, nil, ClientOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	rep, err := h.client.Prepare(ctx, PrepareRequest{Session: 9, Reservation: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataAddr != "agent:7000" || rep.Queued {
		t.Fatalf("prepare reply %+v", rep)
	}
	if st := h.engine.Stats(); st.PoolReserved != 1<<10 {
		t.Fatalf("admission not debited: %+v", st)
	}

	rec := h.record(9)
	close(rec.release) // let the run finish immediately
	pending, err := h.client.Start(StartRequest{Session: 9, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pending.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || res.Bytes != 1234 {
		t.Fatalf("result %+v", res)
	}
}

// TestAdmissionRefusalTyped: a refusal crosses the channel as the typed
// *core.AdmissionError, before any data connection exists.
func TestAdmissionRefusalTyped(t *testing.T) {
	h := newHarness(t, core.EngineOptions{MemBudget: 4 << 10}, nil, ClientOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	_, err := h.client.Prepare(ctx, PrepareRequest{Session: 5, Reservation: 8 << 10})
	var adErr *core.AdmissionError
	if !errors.As(err, &adErr) {
		t.Fatalf("refusal error %v, want *core.AdmissionError", err)
	}
	if adErr.Session != 5 || adErr.Queued {
		t.Fatalf("refusal %+v", adErr)
	}
}

// TestAdmissionQueueOverChannel: a queued session parks (observable via
// STATUS), then admits the moment the blocking session releases.
func TestAdmissionQueueOverChannel(t *testing.T) {
	h := newHarness(t, core.EngineOptions{MemBudget: 4 << 10, AdmitQueueTimeout: 30 * time.Second}, nil, ClientOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := h.client.Prepare(ctx, PrepareRequest{Session: 1, Reservation: 3 << 10}); err != nil {
		t.Fatal(err)
	}
	recA := h.record(1)
	pendingA, err := h.client.Start(StartRequest{Session: 1, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-recA.started

	type prep struct {
		rep *PrepareReply
		err error
	}
	done := make(chan prep, 1)
	go func() {
		rep, err := h.client.Prepare(ctx, PrepareRequest{Session: 2, Reservation: 3 << 10})
		done <- prep{rep, err}
	}()

	// The queued session is visible in the engine stats over the channel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := h.client.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Engine.AdmitQueue == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued session never appeared in stats: %+v", st.Engine)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case p := <-done:
		t.Fatalf("queued prepare resolved early: %+v, %v", p.rep, p.err)
	default:
	}

	// Session 1 finishing frees the budget; the queued prepare completes.
	close(recA.release)
	if _, err := pendingA.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-done:
		if p.err != nil {
			t.Fatalf("queued prepare failed: %v", p.err)
		}
		if !p.rep.Queued {
			t.Fatalf("reply does not record queueing: %+v", p.rep)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued prepare never resolved after release")
	}
}

// TestLeaseExpiryKillsExactlyTheLeasedSession: two sessions on one
// channel; only one is heartbeated. The lapsed one is killed; the
// heartbeated one keeps running undisturbed.
func TestLeaseExpiryKillsExactlyTheLeasedSession(t *testing.T) {
	h := newHarness(t, core.EngineOptions{},
		func(s *Server) { s.LeaseTTL = 250 * time.Millisecond },
		ClientOptions{HeartbeatInterval: -1}) // no automatic renewals
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	for _, sid := range []core.SessionID{1, 2} {
		if _, err := h.client.Prepare(ctx, PrepareRequest{Session: sid, Reservation: 1 << 10}); err != nil {
			t.Fatal(err)
		}
	}
	recs := map[core.SessionID]*runRecord{1: h.record(1), 2: h.record(2)}
	pendings := map[core.SessionID]*Pending{}
	for _, sid := range []core.SessionID{1, 2} {
		p, err := h.client.Start(StartRequest{Session: sid, Index: 1})
		if err != nil {
			t.Fatal(err)
		}
		pendings[sid] = p
		<-recs[sid].started
	}

	// Renew only session 2 while session 1's lease lapses.
	stopBeat := make(chan struct{})
	beatDone := make(chan struct{})
	go func() {
		defer close(beatDone)
		for {
			select {
			case <-stopBeat:
				return
			case <-time.After(50 * time.Millisecond):
				if _, err := h.client.Heartbeat(ctx, []core.SessionID{2}); err != nil {
					return
				}
			}
		}
	}()

	// Session 1 dies of lease expiry...
	res1, err := pendings[1].Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res1.Err, "killed") {
		t.Fatalf("lapsed session result %+v, want killed", res1)
	}
	// ...while session 2 is still running, untouched.
	select {
	case <-recs[2].finished:
		t.Fatal("heartbeated session was killed alongside the lapsed one")
	default:
	}
	close(stopBeat)
	<-beatDone

	// With heartbeats gone, session 2's lease lapses too.
	res2, err := pendings[2].Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Err, "killed") {
		t.Fatalf("session 2 after heartbeats stopped: %+v", res2)
	}
}

// TestLeaseExpiryCancelsUnstartedAdmission: a prepared-but-never-started
// session's grant returns to the engine budget when its lease lapses.
func TestLeaseExpiryCancelsUnstartedAdmission(t *testing.T) {
	h := newHarness(t, core.EngineOptions{},
		func(s *Server) { s.LeaseTTL = 150 * time.Millisecond },
		ClientOptions{HeartbeatInterval: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if _, err := h.client.Prepare(ctx, PrepareRequest{Session: 3, Reservation: 2 << 10}); err != nil {
		t.Fatal(err)
	}
	if st := h.engine.Stats(); st.PoolReserved != 2<<10 {
		t.Fatalf("grant missing: %+v", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.engine.Stats().PoolReserved != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lapsed admission never released: %+v", h.engine.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReleaseAndHeartbeatAck: RELEASE withdraws a session; heartbeats for
// unknown sessions come back in the ack so clients prune them.
func TestReleaseAndHeartbeatAck(t *testing.T) {
	h := newHarness(t, core.EngineOptions{}, nil, ClientOptions{HeartbeatInterval: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if _, err := h.client.Prepare(ctx, PrepareRequest{Session: 8, Reservation: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	known, err := h.client.Release(ctx, 8)
	if err != nil || !known {
		t.Fatalf("release: known=%v err=%v", known, err)
	}
	if st := h.engine.Stats(); st.PoolReserved != 0 {
		t.Fatalf("release leaked the grant: %+v", st)
	}
	ack, err := h.client.Heartbeat(ctx, []core.SessionID{8, 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(ack.Unknown) != 2 {
		t.Fatalf("heartbeat ack %+v, want both unknown", ack)
	}
	if known, err := h.client.Release(ctx, 77); err != nil || known {
		t.Fatalf("release of unknown session: known=%v err=%v", known, err)
	}
}

// TestStartWithoutPrepareRejected: START is only valid for a prepared
// session on the same channel.
func TestStartWithoutPrepareRejected(t *testing.T) {
	h := newHarness(t, core.EngineOptions{}, nil, ClientOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	p, err := h.client.Start(StartRequest{Session: 123, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(ctx); err == nil || !strings.Contains(err.Error(), "not prepared") {
		t.Fatalf("unprepared start: %v", err)
	}
}

// TestChannelCloseKillsSessions: the channel dropping stops lease
// renewals, so every session on it ends within one lease TTL.
func TestChannelCloseKillsSessions(t *testing.T) {
	h := newHarness(t, core.EngineOptions{},
		func(s *Server) { s.LeaseTTL = 300 * time.Millisecond },
		ClientOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if _, err := h.client.Prepare(ctx, PrepareRequest{Session: 4, Reservation: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	rec := h.record(4)
	if _, err := h.client.Start(StartRequest{Session: 4, Index: 1}); err != nil {
		t.Fatal(err)
	}
	<-rec.started
	h.client.Close()
	select {
	case <-rec.finished:
		if err, _ := rec.ctxErr.Load().(error); err == nil {
			t.Fatal("run finished without cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session survived its channel")
	}
	if err := <-h.serveErr; err != nil && !errors.Is(err, io.EOF) {
		t.Logf("serve returned: %v", err) // informative: pipe close error text varies
	}
}
