package control

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"kascade/internal/core"
)

// Server is the agent side of the control protocol: it serves any number
// of concurrent sessions per connection, runs engine admission for every
// PREPARE, and enforces per-session leases — a session whose sender stops
// heartbeating is killed individually, without disturbing its channel
// neighbours.
type Server struct {
	// Engine is the agent's shared data-plane engine; PREPARE admissions
	// and STATUS snapshots go against it.
	Engine *core.Engine
	// DataAddr resolves the data address to advertise to the sender
	// behind one control connection.
	DataAddr func(conn net.Conn) string
	// Run executes one started session to completion — building the node,
	// opening the sink — and returns its result. It must honour ctx: lease
	// expiry and RELEASE cancel it.
	Run func(ctx context.Context, req StartRequest) ResultReply
	// Join enters a live broadcast as a late peer: engine admission, the
	// graft negotiation with the session's sender, then the joiner node to
	// completion. grafted is called exactly once when the graft lands,
	// before the node runs; the ResultReply is the node's terminal state.
	// A non-nil error (typed: *core.AdmissionError, *core.JoinRefusedError,
	// core.ErrSessionEnded) means no node ran. Nil disables FrameJoin.
	Join func(ctx context.Context, req JoinRequest, grafted func(JoinedReply)) (ResultReply, error)

	// LeaseTTL is how long a prepared or running session survives without
	// a heartbeat. Defaults to 10 s.
	LeaseTTL time.Duration
	// Clock is the lease timer source. Nil selects the system clock.
	Clock core.Clock
}

// ctrlSession is one session's state on one control connection.
type ctrlSession struct {
	sid     core.SessionID
	expires time.Time
	ticket  *core.Ticket       // admission grant, cancellable until started
	cancel  context.CancelFunc // kills the running node (set at START)
	started bool
}

// serverConn serves one control connection.
type serverConn struct {
	s    *Server
	conn net.Conn
	clk  core.Clock
	ttl  time.Duration

	ctx    context.Context // conn lifetime: cancels queued admissions
	cancel context.CancelFunc

	wmu sync.Mutex // serialises frame writes

	mu       sync.Mutex
	sessions map[core.SessionID]*ctrlSession
	closed   bool
}

// ServeConn serves one control connection until it closes. r carries the
// (possibly peeked-into) read side of conn — the agent sniffs the first
// byte to tell framed dialers from legacy v1 JSON ones. When the
// connection drops, sessions that never started are released immediately
// and running ones lose their renewal source: the lease sweeper keeps
// running detached and ends each of them within one lease TTL. (The v1
// protocol let orphaned nodes run to completion; leases bound that.)
func (s *Server) ServeConn(conn net.Conn, r io.Reader) error {
	clk := s.Clock
	if clk == nil {
		clk = core.SystemClock()
	}
	ttl := s.LeaseTTL
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	sc := &serverConn{
		s: s, conn: conn, clk: clk, ttl: ttl,
		ctx: ctx, cancel: cancel,
		sessions: make(map[core.SessionID]*ctrlSession),
	}
	go sc.sweepLeases()

	var err error
	for {
		var f frame
		f, err = readFrame(r)
		if err != nil {
			break
		}
		switch f.Type {
		case FramePrepare:
			go sc.handlePrepare(f)
		case FrameStart:
			go sc.handleStart(f)
		case FrameStatus:
			sc.handleStatus(f)
		case FrameRelease:
			sc.handleRelease(f)
		case FrameHeartbeat:
			sc.handleHeartbeat(f)
		case FrameJoin:
			go sc.handleJoin(f)
		default:
			sc.writeErr(f.Req, CodeBadRequest, fmt.Sprintf("unexpected frame %v", f.Type))
		}
	}
	sc.teardown()
	if err == io.EOF {
		return nil
	}
	return err
}

// teardown handles the channel dropping: queued admissions abort (ctx),
// sessions that never started release their grants immediately, and
// running sessions are left to the lease sweeper — with their renewal
// source gone, each ends within one lease TTL.
func (sc *serverConn) teardown() {
	sc.cancel()
	sc.mu.Lock()
	sc.closed = true
	var unstarted []*ctrlSession
	for sid, cs := range sc.sessions {
		if !cs.started {
			delete(sc.sessions, sid)
			unstarted = append(unstarted, cs)
		}
	}
	sc.mu.Unlock()
	for _, cs := range unstarted {
		sc.kill(cs)
	}
}

// kill releases one session's resources: a running node is cancelled, an
// admitted-but-unstarted grant returns to the engine budget.
func (sc *serverConn) kill(cs *ctrlSession) {
	if cs.started {
		if cs.cancel != nil {
			cs.cancel()
		}
		return
	}
	if cs.ticket != nil {
		cs.ticket.Cancel()
	}
}

func (sc *serverConn) write(typ FrameType, req uint64, payload any) {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	_ = writeFrame(sc.conn, typ, req, payload) // conn death surfaces in the read loop
}

func (sc *serverConn) writeErr(req uint64, code, msg string) {
	sc.write(FrameError, req, ErrorReply{Code: code, Message: msg})
}

// handlePrepare runs admission for one session and, once admitted,
// installs its lease and reports the shared data address. Queued
// admissions block only this handler goroutine: the channel keeps serving
// other sessions' frames meanwhile.
func (sc *serverConn) handlePrepare(f frame) {
	var req PrepareRequest
	if err := f.decode(&req); err != nil {
		sc.writeErr(f.Req, CodeBadRequest, err.Error())
		return
	}
	ticket := sc.s.Engine.AdmitClass(req.Session, req.Reservation, req.Class)
	queued := false
	if ticket.Decision() == core.AdmitQueued {
		queued = true
		sc.write(FrameQueued, f.Req, QueuedNotice{WaitMs: ticket.Deadline.Sub(sc.clk.Now()).Milliseconds()})
	}
	decision, err := ticket.Wait(sc.ctx)
	if decision != core.AdmitAccepted {
		var adErr *core.AdmissionError
		switch {
		case errors.As(err, &adErr) && adErr.Queued:
			sc.writeErr(f.Req, CodeAdmissionTimeout, adErr.Reason)
		case errors.As(err, &adErr):
			sc.writeErr(f.Req, CodeAdmissionRefused, adErr.Reason)
		default:
			sc.writeErr(f.Req, CodeInternal, fmt.Sprintf("admission: %v", err))
		}
		return
	}

	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		ticket.Cancel()
		return
	}
	if _, dup := sc.sessions[req.Session]; dup {
		sc.mu.Unlock()
		ticket.Cancel()
		sc.writeErr(f.Req, CodeBadRequest, fmt.Sprintf("session %d already prepared on this channel", req.Session))
		return
	}
	sc.sessions[req.Session] = &ctrlSession{
		sid:     req.Session,
		expires: sc.clk.Now().Add(sc.ttl),
		ticket:  ticket,
	}
	sc.mu.Unlock()
	sc.write(FramePrepared, f.Req, PrepareReply{DataAddr: sc.s.DataAddr(sc.conn), Queued: queued})
}

// handleStart launches a prepared session's node and answers with its
// result when the broadcast completes.
func (sc *serverConn) handleStart(f frame) {
	var req StartRequest
	if err := f.decode(&req); err != nil {
		sc.writeErr(f.Req, CodeBadRequest, err.Error())
		return
	}
	sc.mu.Lock()
	cs, ok := sc.sessions[req.Session]
	if !ok || cs.started {
		sc.mu.Unlock()
		sc.writeErr(f.Req, CodeBadRequest, fmt.Sprintf("session %d not prepared (or already started) on this channel", req.Session))
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	cs.started = true
	cs.cancel = cancel
	cs.expires = sc.clk.Now().Add(sc.ttl)
	sc.mu.Unlock()
	defer cancel()

	res := sc.s.Run(ctx, req)

	sc.mu.Lock()
	delete(sc.sessions, req.Session)
	sc.mu.Unlock()
	if cs.ticket != nil {
		// Normally a no-op: the node adopted the admission grant at
		// register and released it at unregister. But a run that failed
		// before its node ever registered would otherwise leak the grant.
		cs.ticket.Cancel()
	}
	sc.write(FrameResult, f.Req, res)
}

// handleJoin enters a live broadcast as a late peer. The session rides
// the same lease machinery as a started one from the moment the request
// lands: a joiner whose operator stops heartbeating is killed like any
// other session. Two replies on one request ID: FrameJoined when the
// graft lands (or FrameError with a typed code), then FrameResult when
// the joiner node finishes.
func (sc *serverConn) handleJoin(f frame) {
	var req JoinRequest
	if err := f.decode(&req); err != nil {
		sc.writeErr(f.Req, CodeBadRequest, err.Error())
		return
	}
	if sc.s.Join == nil {
		sc.writeErr(f.Req, CodeBadRequest, "agent does not support late join")
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	if _, dup := sc.sessions[req.Session]; dup {
		sc.mu.Unlock()
		sc.writeErr(f.Req, CodeBadRequest, fmt.Sprintf("session %d already held on this channel", req.Session))
		return
	}
	cs := &ctrlSession{
		sid:     req.Session,
		expires: sc.clk.Now().Add(sc.ttl),
		cancel:  cancel,
		started: true,
	}
	sc.sessions[req.Session] = cs
	sc.mu.Unlock()

	res, err := sc.s.Join(ctx, req, func(j JoinedReply) {
		sc.write(FrameJoined, f.Req, j)
	})

	sc.mu.Lock()
	delete(sc.sessions, req.Session)
	sc.mu.Unlock()
	if err != nil {
		sc.writeErr(f.Req, joinErrorCode(err), joinErrorMessage(err))
		return
	}
	sc.write(FrameResult, f.Req, res)
}

// joinErrorCode maps a join failure to its wire status code — membership
// codes straight from core, admission codes like PREPARE, CodeInternal
// otherwise. Never derived from error text.
func joinErrorCode(err error) string {
	if code := core.MembershipErrorCode(err); code != "" {
		return code
	}
	var adErr *core.AdmissionError
	if errors.As(err, &adErr) {
		if adErr.Queued {
			return CodeAdmissionTimeout
		}
		return CodeAdmissionRefused
	}
	return CodeInternal
}

// joinErrorMessage extracts the bare payload message: a refusal carries
// just its reason so the far end's rebuilt error does not nest prefixes.
func joinErrorMessage(err error) string {
	var jr *core.JoinRefusedError
	if errors.As(err, &jr) {
		return jr.Reason
	}
	var adErr *core.AdmissionError
	if errors.As(err, &adErr) {
		return adErr.Reason
	}
	return err.Error()
}

func (sc *serverConn) handleStatus(f frame) {
	rep := StatsReply{Engine: sc.s.Engine.Stats()}
	now := sc.clk.Now()
	sc.mu.Lock()
	for _, cs := range sc.sessions {
		state := "prepared"
		if cs.started {
			state = "running"
		}
		rep.Sessions = append(rep.Sessions, SessionStatus{
			Session: cs.sid,
			State:   state,
			LeaseMs: cs.expires.Sub(now).Milliseconds(),
		})
	}
	sc.mu.Unlock()
	sort.Slice(rep.Sessions, func(i, j int) bool { return rep.Sessions[i].Session < rep.Sessions[j].Session })
	sc.write(FrameStats, f.Req, rep)
}

func (sc *serverConn) handleRelease(f frame) {
	var req ReleaseRequest
	if err := f.decode(&req); err != nil {
		sc.writeErr(f.Req, CodeBadRequest, err.Error())
		return
	}
	sc.mu.Lock()
	cs, ok := sc.sessions[req.Session]
	if ok {
		delete(sc.sessions, req.Session)
	}
	sc.mu.Unlock()
	if ok {
		sc.kill(cs)
	}
	sc.write(FrameReleased, f.Req, ReleasedReply{Known: ok})
}

func (sc *serverConn) handleHeartbeat(f frame) {
	var req HeartbeatRequest
	if err := f.decode(&req); err != nil {
		sc.writeErr(f.Req, CodeBadRequest, err.Error())
		return
	}
	var ack HeartbeatAck
	expires := sc.clk.Now().Add(sc.ttl)
	sc.mu.Lock()
	for _, sid := range req.Sessions {
		if cs, ok := sc.sessions[sid]; ok {
			cs.expires = expires
		} else {
			ack.Unknown = append(ack.Unknown, sid)
		}
	}
	sc.mu.Unlock()
	sc.write(FrameHeartbeatAck, f.Req, ack)
}

// sweepLeases kills sessions whose leases lapse — and only those: channel
// neighbours with fresh heartbeats are untouched. It outlives the
// connection on purpose: after teardown no renewal can arrive, so it
// keeps sweeping until the last running session's lease lapses, then
// exits.
func (sc *serverConn) sweepLeases() {
	interval := sc.ttl / 4
	if interval <= 0 {
		interval = time.Second
	}
	for {
		t := sc.clk.NewTimer(interval)
		<-t.C()
		now := sc.clk.Now()
		var expired []*ctrlSession
		sc.mu.Lock()
		for sid, cs := range sc.sessions {
			if cs.expires.Before(now) {
				delete(sc.sessions, sid)
				expired = append(expired, cs)
			}
		}
		drained := sc.closed && len(sc.sessions) == 0
		sc.mu.Unlock()
		for _, cs := range expired {
			sc.kill(cs)
		}
		if drained {
			return
		}
	}
}
