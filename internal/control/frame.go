// Package control implements the sender↔agent control channel: a framed,
// request-ID-multiplexed protocol carrying any number of concurrent
// broadcast sessions over exactly one long-lived TCP connection per
// sender↔agent pair.
//
// The previous control plane spoke one JSON blob per message on one
// connection per session, with "connection open" doubling as the session
// liveness signal. This package replaces both properties:
//
//   - Framing: every message is a fixed 14-byte header — magic, frame
//     type, request ID, payload length — followed by a JSON payload.
//     Replies carry the request ID of their request, so PREPARE/START/
//     STATUS/RELEASE exchanges for different sessions interleave freely
//     on the shared channel (a START's RESULT arrives minutes after
//     later frames were served).
//
//   - Liveness: per-session leases renewed by HEARTBEAT frames. An agent
//     kills exactly the sessions whose leases lapse; the channel closing
//     still ends every session on it, as before.
//
// The first byte of every frame is Magic, which is deliberately not '{':
// a legacy v1 dialer opens with a bare JSON object, so an agent detects
// the protocol version from the first byte and serves both on the same
// listening port.
package control

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"kascade/internal/core"
)

// Magic is the first byte of every control frame. It must never equal
// '{' (0x7B), the first byte of a legacy v1 JSON control message.
const Magic = 0xA6

// FrameType enumerates the control frames.
type FrameType byte

const (
	// FramePrepare asks the agent to admit a session and report its shared
	// data address. Final reply: FramePrepared or FrameError; a
	// FrameQueued notice may precede either while admission queues.
	FramePrepare FrameType = iota + 1
	FramePrepared
	FrameQueued
	// FrameStart launches an admitted session's node. The FrameResult
	// reply arrives when the broadcast finishes, however long that takes.
	FrameStart
	FrameResult
	// FrameStatus asks for the agent's engine stats and session table.
	FrameStatus
	FrameStats
	// FrameRelease withdraws a session: a queued or admitted session is
	// cancelled, a running one is killed. Reply: FrameReleased.
	FrameRelease
	FrameReleased
	// FrameHeartbeat renews the leases of the named sessions.
	FrameHeartbeat
	FrameHeartbeatAck
	// FrameError is the failure reply to any request.
	FrameError
	// FrameJoin asks the agent to join a live broadcast as a late peer:
	// engine admission, the RoleJoin graft negotiation with the session's
	// sender, then running the joiner node. Reply: FrameJoined when the
	// graft landed (the node keeps running; a FrameResult follows when it
	// finishes), or FrameError with a membership code.
	FrameJoin
	FrameJoined
)

func (t FrameType) String() string {
	switch t {
	case FramePrepare:
		return "PREPARE"
	case FramePrepared:
		return "PREPARED"
	case FrameQueued:
		return "QUEUED"
	case FrameStart:
		return "START"
	case FrameResult:
		return "RESULT"
	case FrameStatus:
		return "STATUS"
	case FrameStats:
		return "STATS"
	case FrameRelease:
		return "RELEASE"
	case FrameReleased:
		return "RELEASED"
	case FrameHeartbeat:
		return "HEARTBEAT"
	case FrameHeartbeatAck:
		return "HEARTBEAT-ACK"
	case FrameError:
		return "ERROR"
	case FrameJoin:
		return "JOIN"
	case FrameJoined:
		return "JOINED"
	default:
		return fmt.Sprintf("FrameType(%d)", byte(t))
	}
}

// headerSize is magic + type + request ID + payload length.
const headerSize = 1 + 1 + 8 + 4

// maxFramePayload bounds control payloads read from the wire (plans carry
// the full peer list, reports the full failure list — generous but finite).
const maxFramePayload = 16 << 20

// frame is one decoded control message.
type frame struct {
	Type    FrameType
	Req     uint64
	Payload []byte
}

// decode unmarshals the frame payload into v.
func (f frame) decode(v any) error {
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("control: bad %v payload: %w", f.Type, err)
	}
	return nil
}

// writeFrame marshals payload and writes one frame. Callers serialise
// writes themselves (the client and server each hold a write mutex).
func writeFrame(w io.Writer, typ FrameType, req uint64, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("control: encoding %v: %w", typ, err)
	}
	if len(body) > maxFramePayload {
		return fmt.Errorf("control: %v payload of %d bytes exceeds limit", typ, len(body))
	}
	hdr := make([]byte, headerSize, headerSize+len(body))
	hdr[0] = Magic
	hdr[1] = byte(typ)
	binary.BigEndian.PutUint64(hdr[2:10], req)
	binary.BigEndian.PutUint32(hdr[10:14], uint32(len(body)))
	_, err = w.Write(append(hdr, body...))
	return err
}

// readFrame reads one frame from r. io.EOF passes through untouched so
// loops can distinguish a clean close from a protocol error.
func readFrame(r io.Reader) (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return frame{}, io.EOF
		}
		return frame{}, err
	}
	if hdr[0] != Magic {
		return frame{}, fmt.Errorf("control: bad frame magic 0x%02x", hdr[0])
	}
	f := frame{
		Type: FrameType(hdr[1]),
		Req:  binary.BigEndian.Uint64(hdr[2:10]),
	}
	size := binary.BigEndian.Uint32(hdr[10:14])
	if size > maxFramePayload {
		return frame{}, fmt.Errorf("control: %v frame of %d bytes exceeds limit", f.Type, size)
	}
	f.Payload = make([]byte, size)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return frame{}, err
	}
	return f, nil
}

// PrepareRequest admits one session before any data connection is dialed.
type PrepareRequest struct {
	Session core.SessionID `json:"session"`
	// Reservation is the pooled-buffer byte budget the session asks the
	// agent's engine for (core.Options.PoolReservation).
	Reservation int64 `json:"reservation"`
	// Class names the session's priority class (e.g. core.ClassBulk,
	// core.ClassInteractive): it orders the agent's admission queue and
	// weights the session's data-plane scheduling quanta. Empty behaves
	// as weight 1.
	Class string `json:"class,omitempty"`
}

// PrepareReply reports the agent's shared data address for an admitted
// session.
type PrepareReply struct {
	DataAddr string `json:"data_addr"`
	// Queued reports that admission parked the session before accepting.
	Queued bool `json:"queued,omitempty"`
}

// QueuedNotice is the interim FrameQueued payload: admission parked the
// session; a final PREPARED or ERROR follows by WaitMs at the latest.
type QueuedNotice struct {
	WaitMs int64 `json:"wait_ms"`
}

// SinkSpec names the destination of the broadcast payload on the agent.
// Path writes a file; Command pipes the stream through `sh -c`. At most
// one may be set; neither discards.
type SinkSpec struct {
	Path    string `json:"path,omitempty"`
	Command string `json:"command,omitempty"`
}

// StartRequest launches a prepared session's node.
type StartRequest struct {
	Session core.SessionID `json:"session"`
	Index   int            `json:"index"`
	Peers   []core.Peer    `json:"peers"`
	Opts    core.Options   `json:"opts"`
	Output  SinkSpec       `json:"output,omitempty"`
	// Transport selects the data plane (core.Plan.Transport): "" / "tcp"
	// for the chunked relay pipeline, "udp" for the batched datagram
	// fan-out. With "udp" every peer carries a PacketAddr and the agent
	// binds a datagram endpoint on its own peer's port.
	Transport string `json:"transport,omitempty"`
	// Topology selects the dissemination shape (core.Plan.Topology): "" /
	// "chain" for the linear pipeline, "tree:<k>" for the k-ary BFS tree.
	// Every agent must run the same shape, so it travels with the plan.
	Topology string `json:"topology,omitempty"`
}

// ResultReply is the terminal state of one started session.
type ResultReply struct {
	Err    string       `json:"err,omitempty"`
	Report *core.Report `json:"report,omitempty"`
	Bytes  uint64       `json:"bytes,omitempty"`
}

// JoinRequest asks the agent to enter a live broadcast as a late peer.
// The session's options, transport and topology are NOT carried here: the
// agent learns them from the sender's JOININFO descriptor during the
// graft negotiation, so the joiner always runs the session's real shape.
type JoinRequest struct {
	Session core.SessionID `json:"session"`
	// SenderAddr is the data address of the session's node 0, where the
	// RoleJoin negotiation is played.
	SenderAddr string `json:"sender_addr"`
	// Name is the joiner's peer name in reports and the member table.
	Name   string   `json:"name"`
	Output SinkSpec `json:"output,omitempty"`
}

// JoinedReply reports a landed graft. The joiner node keeps running; its
// terminal FrameResult arrives on the same request ID when it finishes.
type JoinedReply struct {
	// Index is the joiner's assigned pipeline index.
	Index int `json:"index"`
	// Head is the catch-up boundary: live data flows from here, [0, Head)
	// is backfilled from the sender.
	Head uint64 `json:"head"`
	// Peers is the membership size at admission (joiner included).
	Peers int `json:"peers"`
}

// StatusRequest asks for the agent's current state.
type StatusRequest struct{}

// SessionStatus is one control-channel session's state in a STATS reply.
type SessionStatus struct {
	Session core.SessionID `json:"session"`
	// State is "prepared" or "running".
	State string `json:"state"`
	// LeaseMs is the remaining lease time in milliseconds.
	LeaseMs int64 `json:"lease_ms"`
}

// StatsReply answers FrameStatus.
type StatsReply struct {
	Engine   core.EngineStats `json:"engine"`
	Sessions []SessionStatus  `json:"sessions,omitempty"`
}

// ReleaseRequest withdraws one session.
type ReleaseRequest struct {
	Session core.SessionID `json:"session"`
}

// ReleasedReply answers FrameRelease.
type ReleasedReply struct {
	// Known reports whether the agent had the session at all.
	Known bool `json:"known"`
}

// HeartbeatRequest renews the leases of every named session.
type HeartbeatRequest struct {
	Sessions []core.SessionID `json:"sessions"`
}

// HeartbeatAck lists the sessions the agent does NOT hold (already
// finished, lease-expired, or never prepared) so the client can stop
// heartbeating them.
type HeartbeatAck struct {
	Unknown []core.SessionID `json:"unknown,omitempty"`
}

// Error codes carried by FrameError payloads.
const (
	// CodeAdmissionRefused: the engine refused the session outright.
	CodeAdmissionRefused = "admission-refused"
	// CodeAdmissionTimeout: the session queued and its deadline passed.
	CodeAdmissionTimeout = "admission-timeout"
	// CodeBadRequest: malformed or out-of-order request (e.g. START
	// without PREPARE).
	CodeBadRequest = "bad-request"
	// CodeInternal: the agent failed serving a well-formed request.
	CodeInternal = "internal"

	// Membership codes, shared verbatim with core.MembershipErrorCode so
	// both ends agree without string-matching error text.
	//
	// CodeSessionEnded: the broadcast already closed its ring (or aborted).
	CodeSessionEnded = "session-ended"
	// CodeJoinRefused: the planner refused the graft (typed reason in the
	// message).
	CodeJoinRefused = "join-refused"
	// CodeCatchUpEvicted: the joiner's pending catch-up range was evicted
	// at the source.
	CodeCatchUpEvicted = "catch-up-evicted"
)

// ErrorReply is the FrameError payload.
type ErrorReply struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorFor converts an ErrorReply into the error the client surfaces:
// admission codes become the typed *core.AdmissionError senders match on,
// and membership codes rebuild core's typed membership errors
// (ErrSessionEnded, *JoinRefusedError, ErrCatchUpEvicted) — the code is
// the contract, never the message text.
func (e ErrorReply) errorFor(sid core.SessionID) error {
	switch e.Code {
	case CodeAdmissionRefused:
		return &core.AdmissionError{Session: sid, Reason: e.Message}
	case CodeAdmissionTimeout:
		return &core.AdmissionError{Session: sid, Reason: e.Message, Queued: true}
	}
	if err, ok := core.MembershipErrorFromCode(e.Code, e.Message); ok {
		return err
	}
	return fmt.Errorf("control: agent error (%s): %s", e.Code, e.Message)
}
