package control

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"kascade/internal/core"
)

// ClientOptions tunes the sender side of one control channel.
type ClientOptions struct {
	// HeartbeatInterval paces lease renewals for every session live on
	// this channel. 0 selects the default (2 s); negative disables the
	// automatic loop (tests drive Heartbeat by hand).
	HeartbeatInterval time.Duration
	// Clock is the client's time source. Nil selects the system clock.
	Clock core.Clock
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	if o.Clock == nil {
		o.Clock = core.SystemClock()
	}
	return o
}

// Client is the sender's end of one control channel: exactly one
// connection per agent, multiplexing every concurrent session this sender
// runs through that agent. All methods are safe for concurrent use; calls
// for different sessions interleave freely on the wire.
type Client struct {
	conn net.Conn
	opts ClientOptions
	clk  core.Clock

	wmu sync.Mutex // serialises frame writes

	mu      sync.Mutex
	nextReq uint64
	pending map[uint64]chan frame
	live    map[core.SessionID]bool // sessions whose leases we renew
	err     error                   // terminal channel error

	done      chan struct{} // closed when the read loop exits
	closeOnce sync.Once
}

// Dial opens the control channel to an agent.
func Dial(addr string, timeout time.Duration, opts ClientOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, opts), nil
}

// NewClient wraps an established connection as a control channel and
// starts its read and heartbeat loops.
func NewClient(conn net.Conn, opts ClientOptions) *Client {
	o := opts.withDefaults()
	c := &Client{
		conn:    conn,
		opts:    o,
		clk:     o.Clock,
		pending: make(map[uint64]chan frame),
		live:    make(map[core.SessionID]bool),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	if o.HeartbeatInterval > 0 {
		go c.heartbeatLoop()
	}
	return c
}

// Close tears the channel down. Sessions still live on the agent lose
// their leases and are killed there — exactly the semantics closing a v1
// control connection had.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.conn.Close() })
	return err
}

// Err reports the channel's terminal error, if the read loop has ended.
func (c *Client) Err() error {
	select {
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.err
	default:
		return nil
	}
}

func (c *Client) readLoop() {
	var err error
	for {
		var f frame
		f, err = readFrame(c.conn)
		if err != nil {
			break
		}
		c.mu.Lock()
		ch := c.pending[f.Req]
		c.mu.Unlock()
		if ch == nil {
			continue // reply to an abandoned request
		}
		select {
		case ch <- f:
		default:
			// A slow waiter's buffer is full; drop rather than stall the
			// whole channel (the waiter already has a final frame queued).
		}
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = fmt.Errorf("control: channel to %s down: %w", c.conn.RemoteAddr(), err)
	}
	c.mu.Unlock()
	close(c.done)
	_ = c.Close()
}

// call registers a new request and writes its frame.
func (c *Client) call(typ FrameType, payload any) (uint64, chan frame, error) {
	c.mu.Lock()
	c.nextReq++
	req := c.nextReq
	ch := make(chan frame, 4)
	c.pending[req] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.conn, typ, req, payload)
	c.wmu.Unlock()
	if err != nil {
		c.forget(req)
		return 0, nil, err
	}
	return req, ch, nil
}

func (c *Client) forget(req uint64) {
	c.mu.Lock()
	delete(c.pending, req)
	c.mu.Unlock()
}

// await reads frames for req until a final one arrives. Interim QUEUED
// notices are folded into the queued flag.
func (c *Client) await(ctx context.Context, req uint64, ch chan frame) (frame, bool, error) {
	queued := false
	for {
		select {
		case f := <-ch:
			if f.Type == FrameQueued {
				queued = true
				continue
			}
			c.forget(req)
			return f, queued, nil
		case <-c.done:
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return frame{}, queued, err
		case <-ctx.Done():
			c.forget(req)
			return frame{}, queued, ctx.Err()
		}
	}
}

// Prepare admits one session on the agent and returns its shared data
// address. It blocks while the agent's admission queue holds the session
// (the reply notes that with Queued); a refusal or queue timeout returns
// the typed *core.AdmissionError, before any data connection is dialed.
func (c *Client) Prepare(ctx context.Context, req PrepareRequest) (*PrepareReply, error) {
	id, ch, err := c.call(FramePrepare, req)
	if err != nil {
		return nil, err
	}
	f, queued, err := c.await(ctx, id, ch)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FramePrepared:
		var rep PrepareReply
		if err := f.decode(&rep); err != nil {
			return nil, err
		}
		rep.Queued = rep.Queued || queued
		c.mu.Lock()
		c.live[req.Session] = true
		c.mu.Unlock()
		return &rep, nil
	case FrameError:
		var er ErrorReply
		if err := f.decode(&er); err != nil {
			return nil, err
		}
		return nil, er.errorFor(req.Session)
	default:
		return nil, fmt.Errorf("control: unexpected %v reply to PREPARE", f.Type)
	}
}

// Pending is a started session's future result.
type Pending struct {
	c   *Client
	sid core.SessionID
	req uint64
	ch  chan frame
}

// Start launches a prepared session's node on the agent. The returned
// Pending resolves when the broadcast finishes; other frames keep flowing
// on the channel meanwhile.
func (c *Client) Start(req StartRequest) (*Pending, error) {
	id, ch, err := c.call(FrameStart, req)
	if err != nil {
		return nil, err
	}
	return &Pending{c: c, sid: req.Session, req: id, ch: ch}, nil
}

// Wait blocks until the session's result arrives. A context expiry does
// NOT stop the session's heartbeats: the broadcast is still running on the
// agent and dropping the lease would kill it; only a final frame (the
// session is over either way) prunes it from the renewal set.
func (p *Pending) Wait(ctx context.Context) (*ResultReply, error) {
	f, _, err := p.c.await(ctx, p.req, p.ch)
	if err != nil {
		return nil, err
	}
	p.c.mu.Lock()
	delete(p.c.live, p.sid)
	p.c.mu.Unlock()
	switch f.Type {
	case FrameResult:
		var res ResultReply
		if err := f.decode(&res); err != nil {
			return nil, err
		}
		return &res, nil
	case FrameError:
		var er ErrorReply
		if err := f.decode(&er); err != nil {
			return nil, err
		}
		return nil, er.errorFor(p.sid)
	default:
		return nil, fmt.Errorf("control: unexpected %v reply to START", f.Type)
	}
}

// Join asks the agent to enter a live broadcast as a late peer. It
// blocks until the graft lands (JOINED) or fails — failures surface as
// the typed membership errors (core.ErrSessionEnded,
// *core.JoinRefusedError) or *core.AdmissionError, rebuilt from the
// frame's status code. On success the joiner node keeps running on the
// agent under the channel's lease renewals; the returned Pending
// resolves with its terminal result.
func (c *Client) Join(ctx context.Context, req JoinRequest) (*JoinedReply, *Pending, error) {
	id, ch, err := c.call(FrameJoin, req)
	if err != nil {
		return nil, nil, err
	}
	// Two replies ride this request ID (JOINED now, RESULT at the end),
	// so the graft wait must not retire the request like await does.
	for {
		select {
		case f := <-ch:
			switch f.Type {
			case FrameQueued:
				continue
			case FrameJoined:
				var rep JoinedReply
				if err := f.decode(&rep); err != nil {
					c.forget(id)
					return nil, nil, err
				}
				c.mu.Lock()
				c.live[req.Session] = true
				c.mu.Unlock()
				return &rep, &Pending{c: c, sid: req.Session, req: id, ch: ch}, nil
			case FrameError:
				c.forget(id)
				var er ErrorReply
				if err := f.decode(&er); err != nil {
					return nil, nil, err
				}
				return nil, nil, er.errorFor(req.Session)
			default:
				c.forget(id)
				return nil, nil, fmt.Errorf("control: unexpected %v reply to JOIN", f.Type)
			}
		case <-c.done:
			c.mu.Lock()
			cerr := c.err
			c.mu.Unlock()
			return nil, nil, cerr
		case <-ctx.Done():
			c.forget(id)
			return nil, nil, ctx.Err()
		}
	}
}

// Status snapshots the agent's engine stats and control-session table.
func (c *Client) Status(ctx context.Context) (*StatsReply, error) {
	id, ch, err := c.call(FrameStatus, StatusRequest{})
	if err != nil {
		return nil, err
	}
	f, _, err := c.await(ctx, id, ch)
	if err != nil {
		return nil, err
	}
	if f.Type != FrameStats {
		return nil, fmt.Errorf("control: unexpected %v reply to STATUS", f.Type)
	}
	var rep StatsReply
	if err := f.decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Release withdraws one session: queued admissions are cancelled, running
// nodes killed. It reports whether the agent still knew the session.
func (c *Client) Release(ctx context.Context, sid core.SessionID) (bool, error) {
	c.mu.Lock()
	delete(c.live, sid)
	c.mu.Unlock()
	id, ch, err := c.call(FrameRelease, ReleaseRequest{Session: sid})
	if err != nil {
		return false, err
	}
	f, _, err := c.await(ctx, id, ch)
	if err != nil {
		return false, err
	}
	if f.Type != FrameReleased {
		return false, fmt.Errorf("control: unexpected %v reply to RELEASE", f.Type)
	}
	var rep ReleasedReply
	if err := f.decode(&rep); err != nil {
		return false, err
	}
	return rep.Known, nil
}

// Heartbeat renews the leases of the given sessions (nil means every
// session currently live on this channel) and prunes sessions the agent
// no longer holds from the automatic renewal set.
func (c *Client) Heartbeat(ctx context.Context, sessions []core.SessionID) (*HeartbeatAck, error) {
	if sessions == nil {
		c.mu.Lock()
		for sid := range c.live {
			sessions = append(sessions, sid)
		}
		c.mu.Unlock()
	}
	if len(sessions) == 0 {
		return &HeartbeatAck{}, nil
	}
	id, ch, err := c.call(FrameHeartbeat, HeartbeatRequest{Sessions: sessions})
	if err != nil {
		return nil, err
	}
	f, _, err := c.await(ctx, id, ch)
	if err != nil {
		return nil, err
	}
	if f.Type != FrameHeartbeatAck {
		return nil, fmt.Errorf("control: unexpected %v reply to HEARTBEAT", f.Type)
	}
	var ack HeartbeatAck
	if err := f.decode(&ack); err != nil {
		return nil, err
	}
	c.mu.Lock()
	for _, sid := range ack.Unknown {
		delete(c.live, sid)
	}
	c.mu.Unlock()
	return &ack, nil
}

// heartbeatLoop renews every live session's lease on a fixed cadence
// until the channel dies.
func (c *Client) heartbeatLoop() {
	for {
		t := c.clk.NewTimer(c.opts.HeartbeatInterval)
		select {
		case <-t.C():
		case <-c.done:
			t.Stop()
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.HeartbeatInterval)
		_, err := c.Heartbeat(ctx, nil)
		cancel()
		if err != nil {
			select {
			case <-c.done:
				return
			default:
				// Transient (e.g. a slow agent missed the deadline): the
				// next beat retries; the lease TTL absorbs a few misses.
			}
		}
	}
}
