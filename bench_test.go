// Package kascade_test holds the top-level benchmark harness: one benchmark
// per table/figure of the paper (regenerating it on the simulator and
// reporting the headline throughput), the design-choice ablations, and
// microbenchmarks of the real protocol engine over the in-memory fabric and
// loopback TCP.
//
// Figure benchmarks run the experiment at a reduced file-size scale so each
// iteration stays in benchmark territory; `cmd/kascade-bench -scale 1`
// regenerates the full-size tables.
package kascade_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"kascade/internal/core"
	"kascade/internal/experiments"
	"kascade/internal/iolimit"
	"kascade/internal/stats"
	"kascade/internal/transport"
)

// benchFigure runs one experiment per iteration and reports the mean of the
// named column at the last x-axis point.
func benchFigure(b *testing.B, id, column string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Reps: 1, Seed: 7, Scale: 0.05}
	if id == "fig15" || id == "abl-timeout" {
		cfg.Scale = 0.6 // late sequential failures must land mid-transfer
	}
	var tab *stats.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab = e.Run(cfg)
	}
	b.StopTimer()
	ci := 0
	for i, c := range tab.Columns {
		if c == column {
			ci = i
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(last.Cells[ci].Mean, "MB/s")
}

func BenchmarkFigure07_Scalability1GbE(b *testing.B) { benchFigure(b, "fig7", "Kascade") }
func BenchmarkFigure08_TenGbE(b *testing.B)          { benchFigure(b, "fig8", "Kascade") }
func BenchmarkFigure09_InfiniBand(b *testing.B)      { benchFigure(b, "fig9", "Kascade") }
func BenchmarkFigure10_RandomOrder(b *testing.B)     { benchFigure(b, "fig10", "Kascade") }
func BenchmarkFigure11_DiskBound(b *testing.B)       { benchFigure(b, "fig11", "Kascade") }
func BenchmarkFigure13_MultiSiteWAN(b *testing.B)    { benchFigure(b, "fig13", "Kascade") }
func BenchmarkFigure14_SmallFile(b *testing.B)       { benchFigure(b, "fig14", "Kascade") }
func BenchmarkFigure15_FaultTolerance(b *testing.B)  { benchFigure(b, "fig15", "Kascade") }
func BenchmarkAblationTimeout(b *testing.B)          { benchFigure(b, "abl-timeout", "Kascade") }
func BenchmarkAblationWindow(b *testing.B)           { benchFigure(b, "abl-window", "Kascade") }
func BenchmarkAblationArity(b *testing.B)            { benchFigure(b, "abl-arity", "TakTuk") }
func BenchmarkAblationStartupWindow(b *testing.B)    { benchFigure(b, "abl-startup", "Kascade") }
func BenchmarkAblationPipelineDepth(b *testing.B)    { benchFigure(b, "abl-depth", "Kascade") }

// engineOpts are protocol options sized for fast in-memory benchmarking.
func engineOpts(chunk int) core.Options {
	return core.Options{
		ChunkSize:    chunk,
		WindowChunks: 32,
	}
}

// runEngineBroadcast pushes size bytes through a real n-node pipeline over
// the in-memory fabric and returns the byte count for throughput reporting.
func runEngineBroadcast(b *testing.B, n int, size int64, chunk int) {
	b.Helper()
	fabric := transport.NewFabric(1 << 20)
	peers := make([]core.Peer, n)
	for i := range peers {
		peers[i] = core.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("n%d:7000", i+1)}
	}
	payload := make([]byte, size)
	iolimit.NewPattern(size, 99).Read(payload)
	cfg := core.SessionConfig{
		Peers:      peers,
		Opts:       engineOpts(chunk),
		NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
		SinkFor:    func(int) io.Writer { return io.Discard },
		InputFile:  newByteReaderAt(payload),
		InputSize:  size,
	}
	res, err := core.RunSession(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Report.Failures) != 0 {
		b.Fatalf("failures during benchmark: %v", res.Report)
	}
}

type byteReaderAt struct{ p []byte }

func newByteReaderAt(p []byte) *byteReaderAt { return &byteReaderAt{p} }

func (r *byteReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r.p)) {
		return 0, io.EOF
	}
	n := copy(p, r.p[off:])
	return n, nil
}

// BenchmarkEnginePipeline measures the real protocol engine end to end over
// the in-memory fabric at several pipeline lengths.
func BenchmarkEnginePipeline(b *testing.B) {
	const size = 16 << 20
	for _, nodes := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				runEngineBroadcast(b, nodes, size, 256<<10)
			}
		})
	}
}

// BenchmarkEngineChunkSize sweeps the protocol chunk size (the §III-C
// design knob) on a fixed 5-node pipeline.
func BenchmarkEngineChunkSize(b *testing.B) {
	const size = 16 << 20
	for _, chunk := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("chunk=%dKiB", chunk>>10), func(b *testing.B) {
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				runEngineBroadcast(b, 5, size, chunk)
			}
		})
	}
}

// BenchmarkEngineTCPLoopback measures the real engine over genuine TCP
// sockets on the loopback interface.
func BenchmarkEngineTCPLoopback(b *testing.B) {
	const size = 16 << 20
	payload := make([]byte, size)
	iolimit.NewPattern(size, 7).Read(payload)
	peers := make([]core.Peer, 4)
	for i := range peers {
		peers[i] = core.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: "127.0.0.1:0"}
	}
	b.SetBytes(size)
	for i := 0; i < b.N; i++ {
		cfg := core.SessionConfig{
			Peers:      peers,
			Opts:       engineOpts(1 << 20),
			NetworkFor: func(int) transport.Network { return transport.TCP{} },
			SinkFor:    func(int) io.Writer { return io.Discard },
			InputFile:  newByteReaderAt(payload),
			InputSize:  size,
		}
		if _, err := core.RunSession(context.Background(), cfg); err != nil {
			b.Skipf("loopback TCP unavailable: %v", err)
		}
	}
}
