// Package kascade_test holds the top-level benchmark harness: one benchmark
// per table/figure of the paper (regenerating it on the simulator and
// reporting the headline throughput), the design-choice ablations, and
// microbenchmarks of the real protocol engine over the in-memory fabric and
// loopback TCP.
//
// Figure benchmarks run the experiment at a reduced file-size scale so each
// iteration stays in benchmark territory; `cmd/kascade-bench -scale 1`
// regenerates the full-size tables.
package kascade_test

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"kascade/internal/benchkit"
	"kascade/internal/core"
	"kascade/internal/experiments"
	"kascade/internal/stats"
	"kascade/internal/transport"
)

// benchFigure runs one experiment per iteration and reports the mean of the
// named column at the last x-axis point.
func benchFigure(b *testing.B, id, column string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Reps: 1, Seed: 7, Scale: 0.05}
	if id == "fig15" || id == "abl-timeout" {
		cfg.Scale = 0.6 // late sequential failures must land mid-transfer
	}
	var tab *stats.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab = e.Run(cfg)
	}
	b.StopTimer()
	ci := 0
	for i, c := range tab.Columns {
		if c == column {
			ci = i
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(last.Cells[ci].Mean, "MB/s")
}

func BenchmarkFigure07_Scalability1GbE(b *testing.B) { benchFigure(b, "fig7", "Kascade") }
func BenchmarkFigure08_TenGbE(b *testing.B)          { benchFigure(b, "fig8", "Kascade") }
func BenchmarkFigure09_InfiniBand(b *testing.B)      { benchFigure(b, "fig9", "Kascade") }
func BenchmarkFigure10_RandomOrder(b *testing.B)     { benchFigure(b, "fig10", "Kascade") }
func BenchmarkFigure11_DiskBound(b *testing.B)       { benchFigure(b, "fig11", "Kascade") }
func BenchmarkFigure13_MultiSiteWAN(b *testing.B)    { benchFigure(b, "fig13", "Kascade") }
func BenchmarkFigure14_SmallFile(b *testing.B)       { benchFigure(b, "fig14", "Kascade") }
func BenchmarkFigure15_FaultTolerance(b *testing.B)  { benchFigure(b, "fig15", "Kascade") }
func BenchmarkAblationTimeout(b *testing.B)          { benchFigure(b, "abl-timeout", "Kascade") }
func BenchmarkAblationWindow(b *testing.B)           { benchFigure(b, "abl-window", "Kascade") }
func BenchmarkAblationArity(b *testing.B)            { benchFigure(b, "abl-arity", "TakTuk") }
func BenchmarkAblationStartupWindow(b *testing.B)    { benchFigure(b, "abl-startup", "Kascade") }
func BenchmarkAblationPipelineDepth(b *testing.B)    { benchFigure(b, "abl-depth", "Kascade") }

// benchEngine runs every benchkit spec under the given top-level prefix,
// so these benchmarks and the BENCH_1.json rows emitted by
// `kascade-bench -engine` share one matrix (names included).
func benchEngine(b *testing.B, prefix string) {
	for _, spec := range benchkit.EngineBenchmarks() {
		name, ok := strings.CutPrefix(spec.Name, prefix+"/")
		if !ok {
			continue
		}
		spec := spec
		b.Run(name, func(b *testing.B) {
			b.SetBytes(spec.Size)
			for i := 0; i < b.N; i++ {
				if _, err := spec.Broadcast(); err != nil {
					if spec.Loopback && i == 0 {
						b.Skipf("loopback sockets unavailable: %v", err)
					}
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnginePipeline measures the real protocol engine end to end over
// the in-memory fabric at several pipeline lengths.
func BenchmarkEnginePipeline(b *testing.B) { benchEngine(b, "EnginePipeline") }

// BenchmarkEngineChunkSize sweeps the protocol chunk size (the §III-C
// design knob) on a fixed 5-node pipeline.
func BenchmarkEngineChunkSize(b *testing.B) { benchEngine(b, "EngineChunkSize") }

// BenchmarkEngineSplice is the kernel-relay ablation: the same loopback
// pipeline with the splice() pass-through off and on.
func BenchmarkEngineSplice(b *testing.B) { benchEngine(b, "EngineSplice") }

// BenchmarkEngineUDP measures the batched datagram fan-out over real
// loopback UDP (sendmmsg/recvmmsg on Linux).
func BenchmarkEngineUDP(b *testing.B) { benchEngine(b, "EngineUDP") }

// BenchmarkEngineTree measures the k-ary tree topology on the fabric:
// the same 16 nodes as EnginePipeline/nodes=16, but 4 hops deep instead
// of 15, each relay serving two children from its window.
func BenchmarkEngineTree(b *testing.B) { benchEngine(b, "EngineTree") }

// BenchmarkEngineTreeRerank is the self-reorganization ablation: the same
// binary tree on a rate-shaped fabric where node 1's outbound links run at
// one tenth of the rest, with mid-broadcast re-ranking off and on.
func BenchmarkEngineTreeRerank(b *testing.B) { benchEngine(b, "EngineTreeRerank") }

// BenchmarkEngineLateJoin prices dynamic membership: the 16-node rerank
// tree of EngineTreeRerank with one late joiner grafted at 50% of the
// transfer, measured to the joiner's catch-up parity.
func BenchmarkEngineLateJoin(b *testing.B) { benchEngine(b, "EngineLateJoin") }

// BenchmarkEngineTCPLoopback measures the real engine over genuine TCP
// sockets on the loopback interface.
func BenchmarkEngineTCPLoopback(b *testing.B) {
	const size = 16 << 20
	payload := benchkit.Payload(size, 7)
	peers := make([]core.Peer, 4)
	for i := range peers {
		peers[i] = core.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: "127.0.0.1:0"}
	}
	b.SetBytes(size)
	for i := 0; i < b.N; i++ {
		cfg := core.SessionConfig{
			Peers:      peers,
			Opts:       benchkit.EngineOptions(1 << 20),
			NetworkFor: func(int) transport.Network { return transport.TCP{} },
			SinkFor:    func(int) io.Writer { return io.Discard },
			InputFile:  benchkit.NewReaderAt(payload),
			InputSize:  size,
		}
		if _, err := core.RunSession(context.Background(), cfg); err != nil {
			b.Skipf("loopback TCP unavailable: %v", err)
		}
	}
}
