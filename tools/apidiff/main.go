// Command apidiff dumps and diffs the exported API surface of Go packages
// using nothing but the standard library's go/parser, so it runs in CI with
// no module downloads.
//
// Dump mode prints one line per exported symbol, sorted, in a stable
// normalized form:
//
//	apidiff dump ./internal/core ./internal/control > old.api
//
// Diff mode compares two dumps and classifies every difference:
//
//	apidiff diff old.api new.api
//
// Additions are reported but benign (exit 0). Removals and changes are
// breaking (exit 1) — the CI job then checks whether the PR documents them
// in API_CHANGES.md before deciding to fail.
//
// The normalized form deliberately captures what callers can observe:
// package path, symbol kind, name, and a rendered type/signature. Unexported
// struct fields, method bodies, and comments are invisible to it; reordering
// declarations or struct fields does not change the dump (each field is its
// own line).
package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "dump":
		if len(os.Args) < 3 {
			usage()
		}
		lines, err := dumpDirs(os.Args[2:])
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(os.Stdout)
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		w.Flush()
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		breaking, err := diff(os.Args[2], os.Args[3])
		if err != nil {
			fatal(err)
		}
		if breaking {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: apidiff dump <pkg-dir>... | apidiff diff <old.api> <new.api>")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apidiff:", err)
	os.Exit(2)
}

// dumpDirs parses every non-test .go file in each directory and returns the
// sorted exported-API lines. Directories that do not exist are skipped (a
// package may not exist yet at the merge-base).
func dumpDirs(dirs []string) ([]string, error) {
	var lines []string
	for _, dir := range dirs {
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			continue
		}
		pkgLines, err := dumpDir(dir)
		if err != nil {
			return nil, err
		}
		lines = append(lines, pkgLines...)
	}
	sort.Strings(lines)
	return lines, nil
}

func dumpDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	prefix := filepath.ToSlash(filepath.Clean(dir))
	var lines []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			lines = append(lines, dumpFile(prefix, f)...)
		}
	}
	return lines, nil
}

// dumpFile emits the exported declarations of one file. Every line is
// self-contained: "<pkg> <kind> <name>: <rendered form>".
func dumpFile(pkg string, f *ast.File) []string {
	var lines []string
	emit := func(kind, name, detail string) {
		lines = append(lines, fmt.Sprintf("%s %s %s: %s", pkg, kind, name, detail))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			name := d.Name.Name
			if d.Recv != nil {
				recv, exported := recvType(d.Recv)
				if !exported || !ast.IsExported(name) {
					continue
				}
				emit("method", recv+"."+name, renderFuncType(d.Type))
			} else if ast.IsExported(name) {
				emit("func", name, renderFuncType(d.Type))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !ast.IsExported(s.Name.Name) {
						continue
					}
					dumpType(emit, s)
				case *ast.ValueSpec:
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					for _, n := range s.Names {
						if !ast.IsExported(n.Name) {
							continue
						}
						detail := render(s.Type)
						if detail == "" {
							detail = "(untyped)"
						}
						emit(kind, n.Name, detail)
					}
				}
			}
		}
	}
	return lines
}

// dumpType renders a type declaration. Structs and interfaces explode into
// one line per exported member so a single added field reads as one added
// line, not a whole-type change.
func dumpType(emit func(kind, name, detail string), s *ast.TypeSpec) {
	name := s.Name.Name
	switch t := s.Type.(type) {
	case *ast.StructType:
		emit("type", name, "struct")
		for _, field := range t.Fields.List {
			ft := render(field.Type)
			if len(field.Names) == 0 { // embedded
				base := ft
				if i := strings.LastIndex(base, "."); i >= 0 {
					base = base[i+1:]
				}
				if ast.IsExported(strings.TrimPrefix(base, "*")) {
					emit("field", name+"."+strings.TrimPrefix(base, "*"), ft)
				}
				continue
			}
			for _, fn := range field.Names {
				if ast.IsExported(fn.Name) {
					emit("field", name+"."+fn.Name, ft)
				}
			}
		}
	case *ast.InterfaceType:
		emit("type", name, "interface")
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				emit("embeds", name+"."+render(m.Type), render(m.Type))
				continue
			}
			for _, mn := range m.Names {
				if ast.IsExported(mn.Name) {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						emit("method", name+"."+mn.Name, renderFuncType(ft))
					}
				}
			}
		}
	default:
		emit("type", name, render(s.Type))
	}
}

// recvType returns the receiver's base type name and whether it is exported.
func recvType(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, ast.IsExported(id.Name)
	}
	return "", false
}

func renderFuncType(ft *ast.FuncType) string {
	params := renderFieldList(ft.Params)
	results := renderFieldList(ft.Results)
	if results == "" {
		return "func(" + params + ")"
	}
	return "func(" + params + ") (" + results + ")"
}

// renderFieldList renders parameter/result types only — names are dropped,
// so renaming a parameter is not an API change.
func renderFieldList(fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		t := render(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, ", ")
}

// render prints a type expression in a stable, compact form.
func render(e ast.Expr) string {
	switch t := e.(type) {
	case nil:
		return ""
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return render(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return "*" + render(t.X)
	case *ast.ArrayType:
		if t.Len != nil {
			return "[" + render(t.Len) + "]" + render(t.Elt)
		}
		return "[]" + render(t.Elt)
	case *ast.MapType:
		return "map[" + render(t.Key) + "]" + render(t.Value)
	case *ast.ChanType:
		switch t.Dir {
		case ast.RECV:
			return "<-chan " + render(t.Value)
		case ast.SEND:
			return "chan<- " + render(t.Value)
		default:
			return "chan " + render(t.Value)
		}
	case *ast.FuncType:
		return renderFuncType(t)
	case *ast.Ellipsis:
		return "..." + render(t.Elt)
	case *ast.InterfaceType:
		if len(t.Methods.List) == 0 {
			return "interface{}"
		}
		var ms []string
		for _, m := range t.Methods.List {
			ms = append(ms, render(m.Type))
		}
		return "interface{" + strings.Join(ms, "; ") + "}"
	case *ast.StructType:
		var fs []string
		for _, f := range t.Fields.List {
			fs = append(fs, render(f.Type))
		}
		return "struct{" + strings.Join(fs, "; ") + "}"
	case *ast.BasicLit:
		return t.Value
	case *ast.IndexExpr:
		return render(t.X) + "[" + render(t.Index) + "]"
	case *ast.IndexListExpr:
		var idx []string
		for _, i := range t.Indices {
			idx = append(idx, render(i))
		}
		return render(t.X) + "[" + strings.Join(idx, ", ") + "]"
	case *ast.ParenExpr:
		return "(" + render(t.X) + ")"
	case *ast.BinaryExpr: // array lengths like 1 << 20
		return render(t.X) + " " + t.Op.String() + " " + render(t.Y)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// diff loads two dumps and prints a classified report. A symbol present in
// both files under the same key but with different detail is "changed"; a
// key only in old is "removed"; only in new, "added". Returns whether any
// breaking (removed/changed) difference exists.
func diff(oldPath, newPath string) (bool, error) {
	oldAPI, err := loadDump(oldPath)
	if err != nil {
		return false, err
	}
	newAPI, err := loadDump(newPath)
	if err != nil {
		return false, err
	}
	var added, removed, changed []string
	for key, detail := range newAPI {
		if oldDetail, ok := oldAPI[key]; !ok {
			added = append(added, key+": "+detail)
		} else if oldDetail != detail {
			changed = append(changed, fmt.Sprintf("%s: %s -> %s", key, oldDetail, detail))
		}
	}
	for key, detail := range oldAPI {
		if _, ok := newAPI[key]; !ok {
			removed = append(removed, key+": "+detail)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	sort.Strings(changed)
	for _, l := range added {
		fmt.Println("+ " + l)
	}
	for _, l := range changed {
		fmt.Println("! " + l)
	}
	for _, l := range removed {
		fmt.Println("- " + l)
	}
	fmt.Printf("apidiff: %d added, %d changed, %d removed\n", len(added), len(changed), len(removed))
	return len(removed)+len(changed) > 0, nil
}

// loadDump reads a dump file into key -> detail. The key is everything up
// to the first ": ", which is unique per (package, kind, name).
func loadDump(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	api := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		key, detail, ok := strings.Cut(line, ": ")
		if !ok {
			key, detail = line, ""
		}
		api[key] = detail
	}
	return api, nil
}
